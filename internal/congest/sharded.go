package congest

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// The sharded engine is a round-driven scheduler built for large graphs.
// Rather than funnelling every Sync through one global mutex and sorting
// every inbox every round (the goroutine engine), it
//
//   - partitions the nodes into a fixed, GOMAXPROCS-sized set of barrier
//     shards, so barrier accounting contends on a per-shard mutex and only
//     the last arrival of each shard touches global state;
//   - precomputes a CSR layout of per-directed-edge message slots, giving
//     every (sender, port) pair a unique destination index, so deposits are
//     plain lock-free array writes (each slot has exactly one writer and one
//     reader per round);
//   - double-buffers the slot array with round-parity indexing, so delivery
//     is a single counter increment — no copying, no sorting (slots are
//     already ordered by the receiver's port), no per-message allocation.
//
// The barrier is a two-level arrive-wait tree: nodes arrive at their shard
// (per-shard mutex), each shard's last arrival arrives at the root (one
// atomic CAS on a packed active/arrived counter — no global mutex on the
// arrive path), and the last shard performs delivery and wakes each shard
// through its own wake channel. The global mutex survives only on the cold
// paths (delivery bookkeeping, failure).
//
// Semantics are identical to the goroutine engine; the conformance suite
// (internal/congest/conformance) asserts byte-identical outputs and
// identical metrics on a corpus of graphs. The slot array uses nil as its
// no-message marker; this never collides with a real payload because Send
// canonicalizes zero-length payloads to nil on every engine (the sentinel
// below marks present-but-empty messages internally and is converted back
// to nil on delivery).

// topology is the CSR slot layout of a graph, shared by every sharded run
// on the same Network.
type topology struct {
	// inOff[v]..inOff[v+1] are node v's inbox slots, one per port, in port
	// order. The same range indexes v's out-edges: out-edge (v, port p) is
	// entry inOff[v]+p of destSlot.
	inOff []int32
	// destSlot[inOff[v]+p] is the inbox slot of the neighbour on v's port p,
	// i.e. inOff[u]+q where u is that neighbour and q is the port of v at u.
	destSlot []int32
}

func buildTopology(net *Network) *topology {
	g := net.g
	n := g.N()
	t := &topology{inOff: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		t.inOff[v+1] = t.inOff[v] + int32(g.Degree(v))
	}
	t.destSlot = make([]int32, 2*g.M())
	for u := 0; u < n; u++ {
		for q, w := range g.Neighbors(u) {
			v := int(w)
			p := portOf(g, v, u) // u sits on port p of v
			t.destSlot[t.inOff[v]+int32(p)] = t.inOff[u] + int32(q)
		}
	}
	return t
}

// emptyMsg marks a present-but-empty message in the slot array (nil means
// no message).
var emptyMsg = []byte{}

// depositOutbox writes a node's outbox into the [][]byte slot buffer via
// the CSR slot map and returns the message metrics. This is the blocking
// engines' deposit; depositOutboxPacked below is the stepped engine's, and
// the two must account metrics identically — the cross-engine
// byte-identity contract depends on these paths never diverging (the
// conformance suite compares the metrics of every run, failed runs
// included).
func (t *topology) depositOutbox(v int, outbox []outMsg, buf [][]byte, hist *MsgHist) (msgs, bitsSum int64, maxB int) {
	base := t.inOff[v]
	for _, m := range outbox {
		pl := m.payload
		if pl == nil {
			pl = emptyMsg
		}
		buf[t.destSlot[base+int32(m.port)]] = pl
		msgs++
		b := len(m.payload) * 8
		bitsSum += int64(b)
		if b > maxB {
			maxB = b
		}
		if hist != nil {
			hist.observe(len(m.payload))
		}
	}
	return
}

// depositOutboxPacked is the stepped engine's deposit: payload bytes are
// copied into the depositing worker's slotArena and each slot gets a packed
// {offset, tagged length} record — 8 bytes per slot against the 24 the
// [][]byte layout spends, across both parity buffers. The tagged length
// (slotRec) replaces the nil/emptyMsg sentinels of the blocking path. The
// metrics accounting is line-for-line the accounting of depositOutbox.
// ok is false when the arena outgrew the records' 32-bit offset range; the
// caller must fail the run (records past the limit hold wrapped offsets,
// but the failure stops the round from being delivered, so no reader sees
// them).
func (t *topology) depositOutboxPacked(v int, outbox []outMsg, recs []slotRec, arena *slotArena, phase int, hist *MsgHist) (msgs, bitsSum int64, maxB int, ok bool) {
	base := t.inOff[v]
	// The generation slice is carried through the loop and stored back once:
	// an outbox-grained push, not a per-message one.
	g := arena.gens[phase%3]
	// Broadcast queues one payload slice on every port; records are views,
	// so the bytes go into the arena once and the ports share the offset.
	var prev []byte
	var prevOff uint32
	for _, m := range outbox {
		rec := slotRec{ln: 1} // present but empty (Send canonicalized it to nil)
		if n := len(m.payload); n > 0 {
			if len(prev) == n && &prev[0] == &m.payload[0] {
				rec.off = prevOff
			} else {
				rec.off = uint32(len(g))
				g = append(g, m.payload...)
				prev, prevOff = m.payload, rec.off
			}
			rec.ln = uint32(n) + 1
		}
		recs[t.destSlot[base+int32(m.port)]] = rec
		msgs++
		b := len(m.payload) * 8
		bitsSum += int64(b)
		if b > maxB {
			maxB = b
		}
		if hist != nil {
			hist.observe(len(m.payload))
		}
	}
	arena.gens[phase%3] = g
	ok = int64(len(g)) <= slotPayloadLimit
	return
}

// appendInbox moves node v's delivered slots from buf into in (clearing
// them for reuse as the write buffer two rounds later), appending Incoming
// values in port order — no sorting needed — with zero-length payloads
// canonicalized back to nil. The stepped engine's packed counterpart is
// steppedWorker.collect, which materializes the same views from slotRecs.
func (t *topology) appendInbox(v int, buf [][]byte, in []Incoming) []Incoming {
	off, end := t.inOff[v], t.inOff[v+1]
	for i := off; i < end; i++ {
		if pl := buf[i]; pl != nil {
			buf[i] = nil
			if len(pl) == 0 {
				pl = nil
			}
			in = append(in, Incoming{Port: int(i - off), Payload: pl})
		}
	}
	return in
}

// barrierShard is the per-shard barrier state. Nodes of one shard contend
// only on this mutex; message metrics are folded in under it, so the hot
// path adds no extra synchronization. Each shard also carries its own wake
// channel, so a delivery wakes shards through disjoint channels instead of
// one global broadcast. Padded to a cache line to avoid false sharing
// between adjacent shards.
type barrierShard struct {
	mu      sync.Mutex
	waiting int
	active  int
	msgs    int64
	bits    int64
	maxBits int
	// hist accumulates the shard's message-size histogram; written under mu
	// (barrier folds a stack-local copy in, finish deposits straight into
	// it) and only when an Observer is attached.
	hist   MsgHist
	resume atomic.Pointer[chan struct{}]
	_      [64]byte
}

// shardedEngine coordinates one sharded run.
type shardedEngine struct {
	net      *Network
	topo     *topology
	round    int       // deliveries performed; written only under gmu between barriers
	deadline time.Time // absolute Config.Deadline instant; zero when unset

	// bufs[(round+1)&1] is the write buffer during the current round;
	// bufs[round&1] was the write buffer of the round just delivered and is
	// read (and cleared) by receivers right after the barrier.
	bufs [2][][]byte

	shards    []barrierShard
	shardSize int

	// arrivals packs the root of the arrive tree into one word:
	// (active shards << 32) | shards arrived this round. Shard-last
	// arrivals CAS it; the arrival that completes the round resets the
	// arrived half in the same CAS, which makes it the unique deliverer.
	arrivals atomic.Uint64

	gmu     sync.Mutex // cold paths only: delivery bookkeeping, failure
	failure error
	// unwind is set (monotonically) just before a wake-up that ends a
	// failed round. Waiters check it after waking instead of the raw
	// failure state: a failure recorded after a successful delivery but
	// before a waiter gets scheduled must not make that waiter skip its
	// round, or the deposits a failed run counts would depend on goroutine
	// scheduling.
	unwind atomic.Bool

	metrics Metrics
	// obs mirrors net.cfg.Observer (nil = telemetry off).
	obs Observer
}

// topology returns the Network's cached CSR slot layout, building it on
// first use.
func (net *Network) topology() *topology {
	net.topoOnce.Do(func() { net.topo = buildTopology(net) })
	return net.topo
}

// runSharded executes prog on every node under the sharded engine.
func (net *Network) runSharded(prog Program) (Metrics, error) {
	n := net.g.N()
	eng := &shardedEngine{net: net, deadline: net.runDeadline()}
	eng.metrics.Model = net.cfg.Model
	eng.metrics.BandwidthBits = net.BandwidthBits()
	eng.obs = net.cfg.Observer
	if n == 0 {
		return eng.metrics, nil
	}
	eng.topo = net.topology()
	slots := len(eng.topo.destSlot)
	eng.bufs[0] = make([][]byte, slots)
	eng.bufs[1] = make([][]byte, slots)

	p := runtime.GOMAXPROCS(0)
	if p < 1 {
		p = 1
	}
	eng.shardSize = (n + p - 1) / p
	numShards := (n + eng.shardSize - 1) / eng.shardSize
	eng.shards = make([]barrierShard, numShards)
	for s := range eng.shards {
		lo := s * eng.shardSize
		hi := lo + eng.shardSize
		if hi > n {
			hi = n
		}
		eng.shards[s].active = hi - lo
		ch := make(chan struct{})
		eng.shards[s].resume.Store(&ch)
	}
	eng.arrivals.Store(uint64(numShards) << 32)

	if eng.obs != nil {
		eng.obs.RoundStart(1)
	}
	nodes := make([]Node, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for v := 0; v < n; v++ {
		nd := &nodes[v]
		nd.net, nd.sched, nd.v = net, eng, v
		go func() {
			defer wg.Done()
			defer eng.finish(nd)
			defer recoverNode(nd.v, eng.fail)
			runProg(nd, prog)
		}()
	}
	wg.Wait()
	for s := range eng.shards {
		sh := &eng.shards[s]
		eng.metrics.Messages += sh.msgs
		eng.metrics.Bits += sh.bits
		if sh.maxBits > eng.metrics.MaxMsgBits {
			eng.metrics.MaxMsgBits = sh.maxBits
		}
	}
	// Failed runs report how far they got (Rounds, AvgMsgBits) instead of
	// zeroes; all three engines populate the failure path identically.
	eng.metrics.Rounds = eng.round
	if eng.metrics.Messages > 0 {
		eng.metrics.AvgMsgBits = float64(eng.metrics.Bits) / float64(eng.metrics.Messages)
	}
	return eng.metrics, eng.failure
}

func (eng *shardedEngine) currentRound() int { return eng.round }

// deposit writes nd's outbox into the current write buffer. Lock-free: each
// destination slot has this node as its unique writer, and the buffer
// cannot be swapped before nd passes the barrier. Returns the message
// metrics for the shard accumulator.
func (eng *shardedEngine) deposit(nd *Node, hist *MsgHist) (msgs, bitsSum int64, maxB int) {
	if len(nd.outbox) == 0 {
		return
	}
	msgs, bitsSum, maxB = eng.topo.depositOutbox(nd.v, nd.outbox, eng.bufs[(eng.round+1)&1], hist)
	nd.outbox = nd.outbox[:0]
	return
}

// collect gathers nd's inbox from the just-delivered buffer (counting first
// so the per-node slice is sized exactly; it outlives the barrier, unlike
// the stepped engine's scratch).
func (eng *shardedEngine) collect(nd *Node) {
	buf := eng.bufs[eng.round&1]
	off, end := eng.topo.inOff[nd.v], eng.topo.inOff[nd.v+1]
	cnt := 0
	for i := off; i < end; i++ {
		if buf[i] != nil {
			cnt++
		}
	}
	if cnt == 0 {
		return
	}
	nd.inbox = eng.topo.appendInbox(nd.v, buf, make([]Incoming, 0, cnt))
}

// barrier implements Sync under the sharded scheduler. A node arriving
// after a mid-round failure still deposits and is counted — the round in
// progress always completes (exactly like the stepped engine's sweep), so
// the deposits a failed run counts are deterministic and
// engine-independent; the unwind happens at the delivery point.
func (eng *shardedEngine) barrier(nd *Node) {
	// The deposit runs outside the shard mutex (it is lock-free by slot
	// ownership), so the histogram lands in a stack-local copy folded in
	// under the mutex with the other counters.
	var lh MsgHist
	var lhp *MsgHist
	if eng.obs != nil {
		lhp = &lh
	}
	msgs, bitsSum, maxB := eng.deposit(nd, lhp)
	s := &eng.shards[nd.v/eng.shardSize]
	// The wake channel must be captured before this node is counted as
	// arrived: delivery (which replaces the channel) cannot happen until
	// every active node has arrived, so the captured channel is exactly the
	// one closed at this round's delivery (or unwind wake-up).
	ch := *s.resume.Load()
	s.mu.Lock()
	s.msgs += msgs
	s.bits += bitsSum
	if maxB > s.maxBits {
		s.maxBits = maxB
	}
	if lhp != nil {
		s.hist.Merge(lh)
	}
	s.waiting++
	full := s.waiting == s.active
	if full {
		s.waiting = 0
	}
	s.mu.Unlock()
	if full && eng.obs != nil {
		// The shard is complete; the gap to the delivery stamp is its
		// barrier wait. Round is -1 (reading eng.round here would race).
		eng.obs.Event(Event{Kind: EvShardArrive, Round: -1, Node: nd.v / eng.shardSize})
	}
	if full && eng.rootArrive() {
		// This node performed the delivery; it does not wait.
		if eng.unwind.Load() {
			panic(runError{eng.loadFailure()})
		}
		eng.collect(nd)
		return
	}
	<-ch
	if eng.unwind.Load() {
		panic(runError{eng.loadFailure()})
	}
	eng.collect(nd)
}

// rootArrive records a full shard at the root of the arrive tree; the last
// shard's CAS also claims delivery by resetting the arrived half. Reports
// whether the caller performed the delivery. Arrivals keep flowing after a
// failure — the round must complete so that every node's deposits are
// counted before the unwind wake-up.
func (eng *shardedEngine) rootArrive() bool {
	for {
		old := eng.arrivals.Load()
		active, arrived := old>>32, old&0xffffffff
		if arrived+1 == active {
			if eng.arrivals.CompareAndSwap(old, active<<32) {
				eng.deliver()
				return true
			}
		} else if eng.arrivals.CompareAndSwap(old, old+1) {
			return false
		}
	}
}

// shardDied removes a shard from the root counter; if the remaining shards
// have all arrived, the caller performs the delivery they are waiting for.
func (eng *shardedEngine) shardDied() {
	for {
		old := eng.arrivals.Load()
		active, arrived := old>>32, old&0xffffffff
		if newActive := active - 1; newActive > 0 && arrived == newActive {
			if eng.arrivals.CompareAndSwap(old, newActive<<32) {
				eng.deliver()
				return
			}
		} else if eng.arrivals.CompareAndSwap(old, newActive<<32|arrived) {
			return
		}
	}
}

// deliver advances the round: the buffers trade roles by parity, so
// delivery is the counter increment plus waking each shard through its own
// channel. If the run failed during the round just completed, the round
// increment is skipped and the wake-up only unwinds the waiters, so a
// failed run's Rounds metric counts actual deliveries. Only the unique CAS
// winner of rootArrive/shardDied calls this.
func (eng *shardedEngine) deliver() {
	eng.gmu.Lock()
	defer eng.gmu.Unlock()
	delivered := false
	if eng.failure == nil {
		eng.round++
		delivered = true
		eng.failure = eng.net.checkRound(eng.round, eng.deadline)
	}
	if eng.failure != nil {
		eng.unwind.Store(true)
	} else if h := eng.net.cfg.Hooks; h != nil {
		h.Stall(eng.round)
	}
	// RoundEnd fires iff the round counter advanced (matching the other
	// engines). Reading the shard accumulators without their mutexes is
	// race-free here: every deposit of the round happens-before the arrive
	// CAS that elected this deliverer.
	if eng.obs != nil && delivered {
		st := RoundStats{Round: eng.round}
		for s := range eng.shards {
			sh := &eng.shards[s]
			st.Live += sh.active
			st.Messages += sh.msgs
			st.Bits += sh.bits
			if sh.maxBits > st.MaxMsgBits {
				st.MaxMsgBits = sh.maxBits
			}
			st.Hist.Merge(sh.hist)
		}
		eng.obs.RoundEnd(st)
		if eng.failure == nil {
			eng.obs.RoundStart(eng.round + 1)
		}
	}
	eng.wakeAllLocked()
}

// wakeAllLocked swaps every shard's wake channel and closes the old one.
// Caller holds gmu, which serializes channel swaps between delivery and
// failure, so every channel is closed exactly once.
func (eng *shardedEngine) wakeAllLocked() {
	for s := range eng.shards {
		ch := make(chan struct{})
		old := eng.shards[s].resume.Swap(&ch)
		close(*old)
	}
}

// finish marks a node as permanently done, delivering its last outbox.
func (eng *shardedEngine) finish(nd *Node) {
	s := &eng.shards[nd.v/eng.shardSize]
	s.mu.Lock()
	if nd.stopped {
		s.mu.Unlock()
		return
	}
	nd.stopped = true
	var histp *MsgHist
	if eng.obs != nil {
		histp = &s.hist // already under s.mu, unlike barrier's deposit
	}
	msgs, bitsSum, maxB := eng.deposit(nd, histp)
	s.msgs += msgs
	s.bits += bitsSum
	if maxB > s.maxBits {
		s.maxBits = maxB
	}
	s.active--
	full := s.active > 0 && s.waiting == s.active
	if full {
		s.waiting = 0
	}
	dead := s.active == 0
	s.mu.Unlock()
	if dead {
		eng.shardDied()
	} else if full {
		eng.rootArrive()
	}
}

// fail records the first failure. It deliberately does NOT wake waiters:
// the failing node's deferred finish completes the round (deposit, active
// count), every other active node still arrives or finishes, and the CAS
// winner that completes the round performs the unwind wake-up — so the
// traffic a failed run reports is a pure function of the program, not of
// which goroutine the scheduler ran first.
func (eng *shardedEngine) fail(err error) {
	eng.gmu.Lock()
	defer eng.gmu.Unlock()
	if eng.failure == nil {
		eng.failure = err
	}
}

func (eng *shardedEngine) loadFailure() error {
	eng.gmu.Lock()
	defer eng.gmu.Unlock()
	return eng.failure
}
