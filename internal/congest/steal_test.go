package congest

import (
	"fmt"
	"runtime"
	"testing"

	"congestds/internal/graph"
)

// skewedStep is a deliberately unbalanced workload: nodes in the first
// chunk-sized block burn far more compute per Step than the rest, so under
// static chunk assignment one worker's range dominates the round while the
// other workers idle. The accumulator folds the spin result in, so the
// work cannot be optimized away and any engine bug that skips it changes
// the output.
type skewedStep struct {
	out    []int64
	rounds int
	heavy  bool
	acc    int64
}

func (s *skewedStep) spin(nd *Node) {
	iters := 40
	if s.heavy {
		iters = 4000
	}
	x := nd.ID()
	for i := 0; i < iters; i++ {
		x = x*6364136223846793005 + 1442695040888963407
	}
	s.acc ^= x
}

func (s *skewedStep) Init(nd *Node) bool {
	s.acc = nd.ID()
	s.spin(nd)
	nd.Broadcast(AppendVarint(nd.PayloadBuf(4), s.acc&0x3fff))
	return false
}

func (s *skewedStep) Step(nd *Node, round int, in []Incoming) bool {
	s.spin(nd)
	for i, msg := range in {
		v, _ := Varint(msg.Payload, 0)
		s.acc = s.acc*31 + v*int64(i+1)
	}
	if round+1 >= s.rounds {
		s.out[nd.V()] = s.acc
		return true
	}
	nd.Broadcast(AppendVarint(nd.PayloadBuf(4), s.acc&0x3fff))
	return false
}

func skewedFactory(out []int64, rounds, heavyBelow int) StepFactory {
	return func(nd *Node) StepProgram {
		return &skewedStep{out: out, rounds: rounds, heavy: nd.V() < heavyBelow}
	}
}

// TestSteppedStealingDeterminism pins the work-stealing invariant: which
// worker claims which chunk varies with GOMAXPROCS and scheduling, but
// outputs and metrics must not. The workload is heavily skewed so that
// stealing actually happens whenever more than one worker is running.
func TestSteppedStealingDeterminism(t *testing.T) {
	g := graph.Torus(40, 40) // 1600 nodes: several chunks even at P=1
	run := func(procs int) ([]int64, Metrics) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		out := make([]int64, g.N())
		m, err := NewNetwork(g, Config{Engine: EngineStepped}).RunStepped(
			skewedFactory(out, 6, g.N()/8))
		if err != nil {
			t.Fatalf("p=%d: %v", procs, err)
		}
		return out, m
	}
	refOut, refM := run(1)
	for _, procs := range []int{2, 3, 4, 8} {
		out, m := run(procs)
		if m != refM {
			t.Errorf("p=%d: metrics %+v != p=1 reference %+v", procs, m, refM)
		}
		for v := range out {
			if out[v] != refOut[v] {
				t.Fatalf("p=%d: node %d output %d != reference %d (stealing is nondeterministic)",
					procs, v, out[v], refOut[v])
			}
		}
	}
}

// TestSteppedStealingRace drives the claimed-chunk sweep with multiple
// workers and live stealing under the race detector (the CI race pass runs
// this in -short mode): cross-chunk collects, per-chunk arena writes and
// the claim counter must all be race-clean.
func TestSteppedStealingRace(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	g := graph.Torus(36, 36)
	out := make([]int64, g.N())
	m, err := NewNetwork(g, Config{Engine: EngineStepped}).RunStepped(
		skewedFactory(out, 5, g.N()/8))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rounds != 5 {
		t.Errorf("rounds=%d, want 5", m.Rounds)
	}
}

// TestSteppedChunkOversubscription pins the steal granularity: large graphs
// must be split into strictly more chunks than workers (or there is nothing
// to steal), while graphs below minChunkNodes stay a single claim.
func TestSteppedChunkOversubscription(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	probe := func(n int) int {
		p := runtime.GOMAXPROCS(0)
		chunk := (n + chunksPerWorker*p - 1) / (chunksPerWorker * p)
		if chunk < minChunkNodes {
			chunk = minChunkNodes
		}
		if chunk > n {
			chunk = n
		}
		return (n + chunk - 1) / chunk
	}
	if got := probe(100); got != 1 {
		t.Errorf("n=100: %d chunks, want 1", got)
	}
	if got := probe(100_000); got <= 2 {
		t.Errorf("n=100000 at P=2: %d chunks, want > P for stealing", got)
	}
}

// BenchmarkSteppedSkewed measures the skewed workload that motivated chunk
// claiming: 1/8 of the nodes are ~100× more expensive. At GOMAXPROCS=1 the
// claim counter is pure overhead (the number to watch for regressions); at
// >1 worker the round tail is one chunk instead of one static range.
func BenchmarkSteppedSkewed(b *testing.B) {
	g := graph.Torus(128, 128)
	for _, procs := range []int{1, 4} {
		b.Run(fmt.Sprintf("p%d", procs), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			net := NewNetwork(g, Config{Engine: EngineStepped})
			out := make([]int64, g.N())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := net.RunStepped(skewedFactory(out, 8, g.N()/8)); err != nil {
					b.Fatal(err)
				}
			}
			nodeRounds := float64(g.N()) * 8
			b.ReportMetric(nodeRounds*float64(b.N)/b.Elapsed().Seconds(), "node-rounds/s")
		})
	}
}
