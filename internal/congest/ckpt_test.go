package congest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"path/filepath"
	"strings"
	"testing"

	"congestds/internal/graph"
)

// testCkpts builds a spectrum of valid checkpoints for round-trip and fuzz
// seeding: minimal, with live state, with pending payloads, with host blob.
func testCkpts() []*Ckpt {
	return []*Ckpt{
		{N: 1, M: 0, FP: 0xdeadbeef, Round: 1, ChunkSize: 1},
		{
			N: 6, M: 6, FP: 42, Round: 3, ChunkSize: 2,
			Messages: 36, Bits: 288, MaxMsgBits: 16,
			Live:   []int32{0, 2, 5},
			States: [][]byte{{1, 2}, nil, {0xff}},
		},
		{
			N: 4, M: 4, FP: 7, Round: 2, ChunkSize: 4,
			Messages: 8, Bits: 64, MaxMsgBits: 8,
			Live:     []int32{0, 1, 2, 3},
			States:   [][]byte{{9}, {8}, {7}, {6}},
			Slots:    []int32{0, 3, 7},
			Payloads: [][]byte{{0xaa, 0xbb}, nil, {0x01}},
		},
		{
			N: 2, M: 1, FP: 1, Round: 9, ChunkSize: 1,
			Live: []int32{1}, States: [][]byte{{5, 5, 5}},
			HasHost: true, Host: []byte("host blob"),
		},
	}
}

// TestCkptRoundTrip: decode∘encode is the identity on every valid
// checkpoint.
func TestCkptRoundTrip(t *testing.T) {
	for i, c := range testCkpts() {
		enc := c.Encode()
		dec, err := DecodeCkpt(enc)
		if err != nil {
			t.Fatalf("ckpt %d: decode: %v", i, err)
		}
		if re := dec.Encode(); !bytes.Equal(re, enc) {
			t.Fatalf("ckpt %d: re-encode differs (%d vs %d bytes)", i, len(re), len(enc))
		}
		if dec.Round != c.Round || dec.N != c.N || dec.FP != c.FP || len(dec.Live) != len(c.Live) {
			t.Fatalf("ckpt %d: fields lost in round trip: %+v vs %+v", i, dec, c)
		}
	}
}

// TestDecodeCkptRejects drives the corruption classes through DecodeCkpt:
// every rejection must wrap ErrBadCkpt.
func TestDecodeCkptRejects(t *testing.T) {
	valid := testCkpts()[2].Encode()
	mutate := func(off int, b byte) []byte {
		c := append([]byte(nil), valid...)
		c[off] ^= b
		return c
	}
	cases := map[string][]byte{
		"empty":            nil,
		"short":            valid[:10],
		"header-only":      valid[:ckptHeaderSize],
		"bad-magic":        mutate(0, 0xff),
		"bad-version":      mutate(8, 0x02),
		"bad-flags":        mutate(12, 0x01),
		"bad-header-crc":   mutate(20, 0x01),
		"bad-body-crc":     mutate(16, 0x01),
		"corrupt-body":     mutate(ckptHeaderSize+3, 0x55),
		"truncated-body":   valid[:len(valid)-4],
		"trailing-garbage": append(append([]byte(nil), valid...), 0x00),
	}
	for name, data := range cases {
		if _, err := DecodeCkpt(data); !errors.Is(err, ErrBadCkpt) {
			t.Errorf("%s: err=%v, want ErrBadCkpt", name, err)
		}
	}
	// Version/flags mutations also invalidate the header CRC; rebuild valid
	// headers around them to hit the dedicated checks.
	for name, fix := range map[string]func(c *Ckpt) []byte{
		"round-zero":   func(c *Ckpt) []byte { c.Round = 0; return c.Encode() },
		"chunk-zero":   func(c *Ckpt) []byte { c.ChunkSize = 0; return c.Encode() },
		"chunk-over-n": func(c *Ckpt) []byte { c.ChunkSize = int(c.N) + 1; return c.Encode() },
		"live-over-n": func(c *Ckpt) []byte {
			c.Live = append(c.Live, int32(c.N))
			c.States = append(c.States, nil)
			return c.Encode()
		},
		"slot-over-2m": func(c *Ckpt) []byte {
			c.Slots = append(c.Slots, int32(2*c.M))
			c.Payloads = append(c.Payloads, nil)
			return c.Encode()
		},
		"live-unordered": func(c *Ckpt) []byte { c.Live = []int32{2, 2}; c.States = [][]byte{nil, nil}; return c.Encode() },
	} {
		c := testCkpts()[2]
		if _, err := DecodeCkpt(fix(c)); !errors.Is(err, ErrBadCkpt) {
			t.Errorf("%s: err=%v, want ErrBadCkpt", name, err)
		}
	}
}

// TestDecodeCkptNonCanonical: an overlong varint spelling of a valid body
// must be rejected even though it parses to the same values.
func TestDecodeCkptNonCanonical(t *testing.T) {
	c := testCkpts()[0]
	body := c.appendBody(nil)
	// Respell the leading uvarint (n=1, one byte 0x01) as the overlong
	// two-byte 0x81 0x00 and rebuild valid CRCs around it.
	long := append([]byte{0x81, 0x00}, body[1:]...)
	enc := c.Encode()
	out := append([]byte(nil), enc[:ckptHeaderSize]...)
	out = append(out, long...)
	binary.LittleEndian.PutUint32(out[16:], crc32.ChecksumIEEE(out[ckptHeaderSize:]))
	binary.LittleEndian.PutUint32(out[20:], crc32.ChecksumIEEE(out[:20]))
	_, err := DecodeCkpt(out)
	if !errors.Is(err, ErrBadCkpt) {
		t.Fatalf("overlong varint accepted: err=%v, want ErrBadCkpt", err)
	}
	if !strings.Contains(err.Error(), "non-canonical") {
		t.Fatalf("rejection is not the canonicality check: %v", err)
	}
}

// TestRunSteppedCkptValidation pins the argument contract: every misuse is
// rejected before the run starts, wraps ErrConfig, and classifies as
// "config" — callers can tell "fix your configuration" from "the run
// failed" without string matching.
func TestRunSteppedCkptValidation(t *testing.T) {
	g := graph.Cycle(8)
	f := func(nd *Node) StepProgram { return &ckptProbeStep{} }
	path := filepath.Join(t.TempDir(), "x.ckpt")
	cases := []struct {
		name string
		cfg  Config
		spec CkptSpec
	}{
		{"non-stepped engine", Config{Engine: EngineGoroutine}, CkptSpec{Path: path, Every: 1}},
		{"empty path", Config{Engine: EngineStepped}, CkptSpec{Every: 1}},
		{"Every=0", Config{Engine: EngineStepped}, CkptSpec{Path: path}},
	}
	for _, c := range cases {
		_, err := NewNetwork(g, c.cfg).RunSteppedCkpt(f, c.spec)
		if err == nil {
			t.Errorf("%s accepted", c.name)
			continue
		}
		if !errors.Is(err, ErrConfig) {
			t.Errorf("%s: err=%v, want ErrConfig", c.name, err)
		}
		if got := SentinelClass(err); got != "config" {
			t.Errorf("%s: class %q, want config", c.name, got)
		}
	}
}

// TestParseEngineConfigSentinel pins that a bad engine name is caller
// misuse in the sentinel taxonomy, not a "program" failure.
func TestParseEngineConfigSentinel(t *testing.T) {
	if _, err := ParseEngine("quantum"); !errors.Is(err, ErrConfig) {
		t.Errorf("ParseEngine(quantum): err=%v, want ErrConfig", err)
	}
}

// ckptProbeStep implements CkptStep trivially: no state, one silent round.
type ckptProbeStep struct{}

func (s *ckptProbeStep) Init(nd *Node) bool                           { return false }
func (s *ckptProbeStep) Step(nd *Node, round int, in []Incoming) bool { return true }
func (s *ckptProbeStep) AppendState(buf []byte) []byte                { return buf }
func (s *ckptProbeStep) RestoreState(data []byte) error {
	if len(data) != 0 {
		return errors.New("unexpected state")
	}
	return nil
}

// plainStep does NOT implement CkptStep; checkpointed runs must refuse it.
type plainStep struct{}

func (s *plainStep) Init(nd *Node) bool                           { return false }
func (s *plainStep) Step(nd *Node, round int, in []Incoming) bool { return true }

// TestRunSteppedCkptRequiresCkptStep: a factory producing plain
// StepPrograms fails loudly at the first checkpoint.
func TestRunSteppedCkptRequiresCkptStep(t *testing.T) {
	g := graph.Cycle(8)
	path := filepath.Join(t.TempDir(), "x.ckpt")
	f := func(nd *Node) StepProgram { return &plainStep{} }
	_, err := NewNetwork(g, Config{Engine: EngineStepped}).RunSteppedCkpt(f, CkptSpec{Path: path, Every: 1})
	if err == nil || !strings.Contains(err.Error(), "CkptStep") {
		t.Fatalf("err=%v, want a CkptStep requirement error", err)
	}
}

// hostBlob is a minimal HostState for the mismatch tests.
type hostBlob struct{ b []byte }

func (h *hostBlob) AppendHost(buf []byte) []byte { return append(buf, h.b...) }
func (h *hostBlob) RestoreHost(data []byte) error {
	h.b = append(h.b[:0], data...)
	return nil
}

// chattyStep keeps the run alive long enough to cross checkpoint
// boundaries: broadcast for `rounds` rounds, then stop.
type chattyStep struct{ rounds int }

func (s *chattyStep) Init(nd *Node) bool { nd.Broadcast([]byte{1}); return false }
func (s *chattyStep) Step(nd *Node, round int, in []Incoming) bool {
	if round+1 >= s.rounds {
		return true
	}
	nd.Broadcast([]byte{byte(round + 2)})
	return false
}
func (s *chattyStep) AppendState(buf []byte) []byte { return AppendVarint(buf, int64(s.rounds)) }
func (s *chattyStep) RestoreState(data []byte) error {
	x, off := Varint(data, 0)
	if off != len(data) {
		return errors.New("bad state")
	}
	s.rounds = int(x)
	return nil
}

// TestCkptHostMismatch: a checkpoint written with host state cannot resume
// without a receiver, and vice versa — both directions are ErrBadCkpt.
func TestCkptHostMismatch(t *testing.T) {
	g := graph.Cycle(8)
	f := func(nd *Node) StepProgram { return &chattyStep{rounds: 6} }
	run := func(path string, host HostState) error {
		_, err := NewNetwork(g, Config{Engine: EngineStepped}).RunSteppedCkpt(f, CkptSpec{Path: path, Every: 1, Host: host})
		return err
	}
	withHost := filepath.Join(t.TempDir(), "with.ckpt")
	if err := run(withHost, &hostBlob{b: []byte("abc")}); err != nil {
		t.Fatal(err)
	}
	// The completed run left its last checkpoint behind; resuming from it
	// without a receiver must fail.
	if err := run(withHost, nil); !errors.Is(err, ErrBadCkpt) {
		t.Errorf("host blob without receiver: err=%v, want ErrBadCkpt", err)
	}
	without := filepath.Join(t.TempDir(), "without.ckpt")
	if err := run(without, nil); err != nil {
		t.Fatal(err)
	}
	if err := run(without, &hostBlob{}); !errors.Is(err, ErrBadCkpt) {
		t.Errorf("receiver without host blob: err=%v, want ErrBadCkpt", err)
	}
}

// FuzzCkptDecode mirrors FuzzCSRGDecode for the checkpoint format. The
// invariant: DecodeCkpt either rejects the input with ErrBadCkpt or accepts
// it, in which case re-encoding the decoded checkpoint reproduces the input
// byte for byte (so resume-after-decode replays exactly the bytes on disk).
func FuzzCkptDecode(f *testing.F) {
	for _, c := range testCkpts() {
		f.Add(c.Encode())
	}
	// Corrupt-class seeds: mutated header, mutated body, truncations.
	base := testCkpts()[2].Encode()
	for _, off := range []int{0, 8, 12, 16, 20, ckptHeaderSize, ckptHeaderSize + 5} {
		c := append([]byte(nil), base...)
		c[off] ^= 0x40
		f.Add(c)
	}
	f.Add(base[:ckptHeaderSize])
	f.Add(base[:len(base)-3])
	f.Add([]byte(ckptMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCkpt(data)
		if err != nil {
			if !errors.Is(err, ErrBadCkpt) {
				t.Fatalf("rejection outside ErrBadCkpt: %v", err)
			}
			return
		}
		if re := c.Encode(); !bytes.Equal(re, data) {
			t.Fatalf("accepted input is not canonical: re-encode differs (%d vs %d bytes)", len(re), len(data))
		}
	})
}
