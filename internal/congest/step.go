package congest

// StepProgram is the stackless, non-blocking form of a Program: per-node
// state lives in an explicit struct, and the engine calls the node instead
// of the node blocking on the engine. The correspondence to the blocking
// form is mechanical (see the package documentation for a worked example):
//
//   - Init replaces the code before the first Sync,
//   - Step(nd, r, inbox) replaces the code between the r-th and (r+1)-th
//     Sync: it receives the messages the blocking program's (r+1)-th Sync
//     would return (sorted by port) and queues the next round's sends,
//   - returning done=true replaces returning from the Program; sends queued
//     in the final call are still delivered, exactly like a blocking
//     program's sends before return.
//
// A StepProgram must not call Node.Sync (the engine owns the barrier; a
// Sync call aborts the run with an error). The inbox slice and, on
// EngineStepped, the payload bytes it references are only valid until Step
// returns — copy anything that must be retained.
type StepProgram interface {
	// Init runs before round 0; the node may Send. Returning true ends the
	// node's participation immediately (its sends are still delivered).
	Init(nd *Node) (done bool)
	// Step runs once per synchronous round r = 0, 1, 2, ... with the
	// messages addressed to this node during the previous send opportunity
	// (Init for r=0, Step r-1 otherwise), sorted by port. Returning true
	// ends the node's participation.
	Step(nd *Node, round int, inbox []Incoming) (done bool)
}

// StepFactory builds the per-node StepProgram instance. Under EngineStepped
// factories are invoked concurrently from the worker pool (always with
// distinct nodes), so a factory must not mutate shared state without
// synchronization; capturing shared output slices that nodes write to
// disjoint indices is fine.
type StepFactory func(nd *Node) StepProgram

// BlockingFromStep adapts a StepFactory to the blocking Program API, so
// stepped programs run unchanged — with identical outputs and metrics — on
// the goroutine-per-node engines. This is the adapter behind RunStepped's
// engine dispatch and the lever the conformance suite uses to hold the
// stepped program corpus byte-identical across all engines.
func BlockingFromStep(f StepFactory) Program {
	return func(nd *Node) {
		sp := f(nd)
		if sp.Init(nd) {
			return
		}
		for r := 0; ; r++ {
			in := nd.Sync()
			if sp.Step(nd, r, in) {
				return
			}
		}
	}
}

// RunStepped executes the stepped program built by f on every node until all
// nodes are done, returning the collected metrics. Under EngineStepped the
// run is stackless: a GOMAXPROCS-sized worker pool drives all nodes over the
// sharded CSR message slots, so memory per node is the program's own state
// struct plus a few machine words — no goroutine stacks. Under the other
// engines the program is adapted to blocking form and produces identical
// results, which is what makes porting a Program to a StepProgram a pure
// performance change.
func (net *Network) RunStepped(f StepFactory) (Metrics, error) {
	switch net.cfg.Engine {
	case EngineStepped:
		return net.runStepped(f)
	default:
		return net.Run(BlockingFromStep(f))
	}
}
