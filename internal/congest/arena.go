package congest

// payloadArena is a bump allocator for message payloads, owned by one
// stepped-engine worker (single writer, no locking). It keeps three
// generations and rotates them once per round:
//
//	round k   allocates from generation  k%3,
//	round k+1 delivers those payloads (receivers read them inside Step),
//	round k+2 leaves them untouched for one grace round,
//	round k+3 rotates back to generation k%3 and recycles the memory.
//
// The grace round gives the invariant the arena tests pin: a payload
// delivered in round r is never aliased by a round r+1 send, so a Step that
// (against the documented contract) holds an inbox payload one extra round
// still reads intact bytes, and contract violations fail loudly in tests
// rather than silently corrupting messages.
//
// A generation is a single block grown geometrically. When a block is full a
// larger one replaces it without copying: outstanding payloads keep the old
// block alive through their own slice headers until the receivers drop them,
// which is exactly the lifetime delivery needs. In steady state no
// allocation happens at all — reset is a length truncation.
type payloadArena struct {
	gens [3][]byte
	cur  int
}

// alloc returns a zero-length slice with the given capacity, bump-allocated
// from the current generation. Appending beyond the capacity falls out of
// the arena safely (the three-index slice cannot clobber later payloads).
func (a *payloadArena) alloc(capacity int) []byte {
	g := a.gens[a.cur]
	if cap(g)-len(g) < capacity {
		size := 2 * cap(g)
		if size < 4096 {
			size = 4096
		}
		if size < capacity {
			size = capacity
		}
		g = make([]byte, 0, size)
	}
	off := len(g)
	a.gens[a.cur] = g[: off+capacity : cap(g)]
	return g[off:off:off+capacity]
}

// rotate advances to the next generation and recycles it. Called by the
// owning worker at the start of every round.
func (a *payloadArena) rotate() {
	a.cur = (a.cur + 1) % 3
	a.gens[a.cur] = a.gens[a.cur][:0]
}
