package congest

// payloadArena is a bump allocator for the scratch buffers Node.PayloadBuf
// hands out, owned by one stepped-engine worker (single writer, no locking).
// Since the packed-slot layout copies every payload into the worker's
// slotArena at deposit time, a PayloadBuf buffer is only live from the
// Init/Step call that allocates it until that node's deposit — so a single
// block, truncated once per round, is enough; the delivered-payload lifetime
// guarantee lives in the slotArena below.
//
// The block grows geometrically. When it is full a larger one replaces it
// without copying: payload slices already handed out this round keep the old
// block alive through their own slice headers until the deposit copies them
// out, so growth can never clobber an outstanding buffer. In steady state no
// allocation happens at all — reset is a length truncation.
type payloadArena struct {
	block []byte
}

// alloc returns a zero-length slice with the given capacity, bump-allocated
// from the current block. Appending beyond the capacity falls out of the
// arena safely (the three-index slice cannot clobber later payloads).
func (a *payloadArena) alloc(capacity int) []byte {
	g := a.block
	if cap(g)-len(g) < capacity {
		size := 2 * cap(g)
		if size < 4096 {
			size = 4096
		}
		if size < capacity {
			size = capacity
		}
		g = make([]byte, 0, size)
	}
	off := len(g)
	a.block = g[: off+capacity : cap(g)]
	return g[off : off : off+capacity]
}

// reset recycles the block. Called by the owning worker at the start of
// every round, when every buffer handed out last round has been deposited.
func (a *payloadArena) reset() {
	a.block = a.block[:0]
}

// slotRec is a packed per-edge message slot: 8 bytes instead of the 24-byte
// slice header the blocking engines' [][]byte buffers spend per slot. The
// payload bytes live in the sending worker's slotArena; the record is only
// the (offset, tagged length) pair needed to rematerialize the view.
//
// ln encodes presence and length in one field, replacing the blocking
// engines' nil / emptyMsg sentinels:
//
//	ln == 0   no message (the cleared state; absent slots stay zero)
//	ln == 1   present but empty (delivered as a nil payload, like every engine)
//	ln == k+1 k payload bytes at gens[...][off:off+k] of the sender's arena
type slotRec struct {
	off uint32
	ln  uint32
}

// slotPayloadLimit is the most payload bytes one worker can deposit per
// round: every record's end offset (off + payload length) must stay
// representable in uint32, so the cap is 2³²-1, not 2³². int64 so the
// declaration compiles on 32-bit platforms (where len can never reach it
// and the guard is simply dead). CONGEST runs sit ~6 orders of magnitude
// below the limit; only a LOCAL-model run with gigabytes of messages per
// round can hit it, and it fails loudly. A var only so the overflow test
// can probe the guard without 4 GiB of RAM.
var slotPayloadLimit int64 = 1<<32 - 1

// slotArena owns the payload bytes behind a worker's deposited slotRecs:
// one flat byte slice per generation, indexed by phase so writers and
// readers agree on which generation holds which round's bytes without any
// shared cursor. Three generations preserve the aliasing guarantee the
// [][]byte layout got from the old three-generation payload arena:
//
//	phase k   deposits copy payload bytes into generation k%3,
//	phase k+1 readers materialize Incoming views over those bytes,
//	phase k+2 leaves them untouched for one grace round,
//	phase k+3 truncates generation k%3 and recycles the memory.
//
// So a payload delivered in round r is never aliased by a round r+1 send: a
// Step that (against the documented contract) holds an inbox payload one
// extra round still reads intact bytes, and contract violations fail loudly
// in tests rather than silently corrupting messages.
//
// Unlike payloadArena, a full generation grows by append (copy): offsets
// recorded earlier in the round must stay valid against the generation's
// base, and readers only look after the round's sweep barrier, so mid-round
// reallocation is invisible to them.
type slotArena struct {
	gens [3][]byte
}

// reset truncates the generation phase%3 for reuse, recycling the bytes
// deposited at phase-3. Called by the owning worker at the start of every
// sweep, before its first push of the round.
func (a *slotArena) reset(phase int) {
	g := a.gens[phase%3]
	a.gens[phase%3] = g[:0]
}

// push copies pl into the phase's generation and returns its offset. The
// engine's deposit (depositOutboxPacked) bypasses push to batch its stores
// per outbox; push is the one-payload form, and like the deposit it leaves
// the offset-range check against slotPayloadLimit to the caller.
func (a *slotArena) push(phase int, pl []byte) uint32 {
	g := a.gens[phase%3]
	off := len(g)
	a.gens[phase%3] = append(g, pl...)
	return uint32(off)
}

// delivered returns the generation holding the bytes deposited during
// phase-1, i.e. the bytes being delivered while the caller sweeps phase.
func (a *slotArena) delivered(phase int) []byte {
	return a.gens[(phase+2)%3]
}
