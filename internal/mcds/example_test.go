package mcds_test

import (
	"fmt"

	"congestds/internal/graph"
	"congestds/internal/mcds"
	"congestds/internal/verify"
)

// ExampleSolve computes a connected dominating set of a path: the
// threshold greedy picks the dominators, and the connect phase fills the
// gap between them along the BFS orientation (node 3 joins as a
// connector).
func ExampleSolve() {
	g := graph.Path(7)
	res, err := mcds.Solve(g, mcds.Params{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("dominating set:", res.DS)
	fmt.Println("connected dominating set:", res.CDS)
	fmt.Println("valid:", verify.CheckCDS(g, res.CDS) == nil)
	// Output:
	// dominating set: [1 2 4 5]
	// connected dominating set: [1 2 3 4 5]
	// valid: true
}
