//go:build race

package mcds

func init() { raceEnabled = true }
