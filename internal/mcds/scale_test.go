package mcds

import (
	"runtime/debug"
	"testing"

	"congestds/internal/congest"
	"congestds/internal/graph"
	"congestds/internal/testmem"
	"congestds/internal/verify"
)

// raceEnabled is set by race_test.go under the race detector.
var raceEnabled = false

// TestMcdsMillionNodeUnionForest: the scale demonstration of the third
// algorithm family — a full connected-dominating-set computation
// (dominate + orient + connect) on a million-node forest-union graph,
// natively on the stepped engine, inside the CI memory budget. The output
// is verified connected and dominating with a measured ratio against the
// dual-packing lower bound; the diameter bound comes from one host-side
// BFS (the known-D assumption). The CI memsmoke job runs this under an
// external GOMEMLIMIT=700MiB next to the torus and arbmds smokes.
func TestMcdsMillionNodeUnionForest(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: million-node run takes ~15 s")
	}
	if raceEnabled {
		t.Skip("race detector multiplies the 1M-node footprint several-fold")
	}
	// Bound the GC's laziness so peak RSS reflects live memory (generator
	// churn included), matching the torus and arbmds smokes.
	defer debug.SetMemoryLimit(debug.SetMemoryLimit(600 << 20))
	const n = 1_000_000
	g := graph.UnionForests(n, 3, 1)
	diam := 2*g.Eccentricity(0) + 2
	res, err := Solve(g, Params{Sim: congest.EngineStepped, DiamBound: diam})
	if err != nil {
		t.Fatal(err)
	}
	if want := 4*len(res.Thresholds) + diam + 2; res.Metrics.Rounds != want {
		t.Errorf("rounds=%d, want 4·|schedule|+D̂+2=%d", res.Metrics.Rounds, want)
	}
	if bound := verify.RoundBoundMCDS(g.MaxDegree(), 0.5, diam); res.Metrics.Rounds > bound {
		t.Errorf("rounds=%d exceed the claimed bound %d (Δ=%d, D̂=%d)",
			res.Metrics.Rounds, bound, g.MaxDegree(), diam)
	}
	if len(res.CDS) > 3*len(res.DS)+1 {
		t.Errorf("|CDS|=%d exceeds 3|DS|+1=%d", len(res.CDS), 3*len(res.DS)+1)
	}
	// Solve already verified connectivity + domination (linear); the
	// certificate adds the dual-packing ratio, cheap even at this size.
	cert := verify.CertifyCDSVerified(g, res.CDS, verify.MCDSClaimBound(g.MaxDegree(), 0.5))
	if !cert.OK {
		t.Errorf("certificate failed at n=10⁶: %v", cert)
	}
	t.Logf("n=%d Δ=%d D̂=%d rounds=%d |DS|=%d |CDS|=%d %v",
		n, g.MaxDegree(), diam, res.Metrics.Rounds, len(res.DS), len(res.CDS), cert)
	hwm := testmem.ReadVmHWM()
	t.Logf("peak RSS after 1M-node mcds run: %.1f MiB", float64(hwm)/(1<<20))
	if hwm > 0 && hwm >= 700<<20 {
		t.Errorf("peak RSS %d bytes >= 700 MiB bound", hwm)
	}
}
