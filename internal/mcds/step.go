package mcds

import (
	"congestds/internal/congest"
	"congestds/internal/graph"
)

// The native StepProgram form. One state machine drives all three phases;
// per-node state is a handful of machine words (the peel counter and
// flags, plus the flood-min BFS triple), so a million-node run costs the
// engine's slot records plus ~6 words per node.
//
// Round layout (peelRounds = 4·|schedule|, D̂ = shared.diam):
//
//	[0, peelRounds)                   dominate: report/offer/nominate/join
//	                                  segments, exactly the arbmds protocol
//	[peelRounds, peelRounds+D̂)        orient: flood-min BFS; message =
//	                                  varint(rootID) ++ uvarint(depth),
//	                                  broadcast only on improvement
//	peelRounds+D̂, peelRounds+D̂+1     connect: empty token hops two steps
//	                                  toward the root, joining receivers
//
// Message kinds never collide: peel segments imply their types by round
// index, BFS messages are always non-empty, connect tokens always empty —
// and the two only share a round boundary in that order.
//
// The blocking twin in blocking.go independently re-derives the same
// protocol (per-neighbour whiteness instead of a support counter, explicit
// loops instead of segment arithmetic); the conformance suite holds the
// two byte-identical on every engine.

// Peel segment layout (a phase is 4 rounds).
const (
	segReport = iota
	segOffer
	segNominate
	segJoin
	segPerPhase
)

// mcdsShared is the read-mostly state every node of one run shares: the
// schedule and phase lengths (read-only) and the output vectors (distinct
// nodes write distinct slots, as the StepFactory contract allows).
type mcdsShared struct {
	ths        []int
	peelRounds int // 4·len(ths), or 0 for the connector-only form
	diam       int // D̂, the orientation phase length
	inD        []bool
	inCDS      []bool
}

// mcdsStep is the per-node state machine.
type mcdsStep struct {
	sh *mcdsShared

	// Dominating phase (compare arbmds: support counter kept exact from
	// the phase messages).
	s         int32
	white     bool
	candidate bool
	selfNom   bool
	joined    bool // member of the dominating set

	// Orientation phase: the flood-min BFS triple.
	bestID     int64
	depth      int32
	parentPort int32
}

// StepFactory builds the full three-phase program for g: peel at decay
// eps, orient for diam rounds, connect. inD and inCDS are the output
// vectors.
func StepFactory(g *graph.Graph, eps float64, diam int, inD, inCDS []bool) congest.StepFactory {
	sh := &mcdsShared{
		ths:   Thresholds(g.MaxDegree(), eps),
		diam:  diam,
		inD:   inD,
		inCDS: inCDS,
	}
	sh.peelRounds = segPerPhase * len(sh.ths)
	return func(nd *congest.Node) congest.StepProgram {
		return &mcdsStep{sh: sh}
	}
}

// ConnectStepFactory builds the connector-only program: the dominating set
// is given in inD (read-only input) and the program runs the orientation
// and connection phases alone, writing the CDS into inCDS.
func ConnectStepFactory(g *graph.Graph, inD []bool, diam int, inCDS []bool) congest.StepFactory {
	sh := &mcdsShared{diam: diam, inD: inD, inCDS: inCDS}
	return func(nd *congest.Node) congest.StepProgram {
		return &mcdsStep{sh: sh}
	}
}

func (ms *mcdsStep) Init(nd *congest.Node) bool {
	if ms.sh.peelRounds == 0 {
		// Connector-only form: the dominating set is an input.
		ms.joined = ms.sh.inD[nd.V()]
		if ms.joined {
			ms.sh.inCDS[nd.V()] = true
		}
		ms.bfsStart(nd)
		return false
	}
	ms.white = true
	ms.s = int32(nd.Degree()) + 1
	// Round 0 is the first phase's report segment: nothing to report yet.
	return false
}

// bfsStart seeds the flood-min BFS: every node roots itself and announces
// (ownID, depth 0); the smallest ID wins the flood.
func (ms *mcdsStep) bfsStart(nd *congest.Node) {
	ms.bestID = nd.ID()
	ms.depth = 0
	ms.parentPort = -1
	buf := congest.AppendVarint(nd.PayloadBuf(20), ms.bestID)
	nd.Broadcast(congest.AppendUvarint(buf, 0))
}

func (ms *mcdsStep) Step(nd *congest.Node, round int, in []congest.Incoming) bool {
	if round < ms.sh.peelRounds {
		ms.peelStep(nd, round, in)
		return false
	}
	rel := round - ms.sh.peelRounds
	switch {
	case rel < ms.sh.diam:
		improved := false
		for _, msg := range in {
			id, off := congest.Varint(msg.Payload, 0)
			if off < 0 {
				panic("mcds: bad orientation payload")
			}
			d, off := congest.Uvarint(msg.Payload, off)
			if off < 0 {
				panic("mcds: bad orientation payload")
			}
			cand := int32(d) + 1
			if id < ms.bestID || (id == ms.bestID && cand < ms.depth) {
				ms.bestID, ms.depth, ms.parentPort = id, cand, int32(msg.Port)
				improved = true
			}
		}
		if rel == ms.sh.diam-1 {
			// Orientation is stable (D̂ ≥ diameter): dominators below the
			// root launch the connect token toward their parent.
			if ms.joined && ms.parentPort >= 0 {
				nd.Send(int(ms.parentPort), nil)
			}
		} else if improved {
			buf := congest.AppendVarint(nd.PayloadBuf(20), ms.bestID)
			nd.Broadcast(congest.AppendUvarint(buf, uint64(ms.depth)))
		}
		return false
	case rel == ms.sh.diam:
		// First connect hop: token receivers (the dominators' parents) join
		// and forward the token once more.
		if len(in) > 0 {
			ms.requireTokens(in)
			ms.sh.inCDS[nd.V()] = true
			if ms.parentPort >= 0 {
				nd.Send(int(ms.parentPort), nil)
			}
		}
		return false
	default:
		// Second connect hop: grandparents join; the program ends for every
		// node at the same round, so Rounds = peelRounds + D̂ + 2 exactly.
		if len(in) > 0 {
			ms.requireTokens(in)
			ms.sh.inCDS[nd.V()] = true
		}
		return true
	}
}

// requireTokens is a defensive assertion on the connect segments: with
// D̂ ≥ diameter the flood quiesces before its last round (improvement
// broadcasts stop at round D̂-2), so only empty connect tokens can arrive
// here, and a too-small D̂ under-propagates rather than over-sends. The
// authoritative too-small-D̂ guard is therefore the post-run
// verification in Solve/Connect (verify.CheckCDS/CheckCDSComponents);
// this assertion only pins the protocol's message-kind invariant against
// future edits.
func (ms *mcdsStep) requireTokens(in []congest.Incoming) {
	for _, msg := range in {
		if len(msg.Payload) != 0 {
			panic("mcds: orientation message after the flood deadline (DiamBound too small)")
		}
	}
}

// peelStep runs one dominate-phase segment — the nominated threshold-sweep
// greedy, segment for segment the protocol of the bounded-arboricity
// peeling (internal/arbmds documents the analysis).
func (ms *mcdsStep) peelStep(nd *congest.Node, round int, in []congest.Incoming) {
	phase := round / segPerPhase
	th := int32(ms.sh.ths[phase])
	switch round % segPerPhase {
	case segReport:
		// Neighbours covered last phase leave the white set; candidacy is
		// decided on the now-exact support.
		ms.s -= int32(len(in))
		ms.candidate = ms.s >= th
		if ms.candidate {
			nd.Broadcast(congest.AppendUvarint(nd.PayloadBuf(5), uint64(ms.s)))
		}
	case segOffer:
		// White nodes nominate the best candidate in N⁺: max support, ties
		// to the larger identifier.
		if !ms.white {
			return
		}
		bestS, bestID, bestPort := int64(-1), int64(-1), -1
		if ms.candidate {
			bestS, bestID = int64(ms.s), nd.ID()
		}
		for _, msg := range in {
			cs, off := congest.Uvarint(msg.Payload, 0)
			if off < 0 {
				panic("mcds: bad candidacy payload")
			}
			id := nd.NeighborID(msg.Port)
			if int64(cs) > bestS || (int64(cs) == bestS && id > bestID) {
				bestS, bestID, bestPort = int64(cs), id, msg.Port
			}
		}
		ms.selfNom = bestS >= 0 && bestPort < 0
		if bestPort >= 0 {
			nd.Send(bestPort, nil)
		}
	case segNominate:
		// Nominated candidates join the dominating set and announce it; the
		// tag byte keeps receivers' support counters exact.
		if ms.candidate && (ms.selfNom || len(in) > 0) {
			ms.joined = true
			ms.sh.inD[nd.V()] = true
			ms.sh.inCDS[nd.V()] = true
			wasWhite := byte(0)
			if ms.white {
				wasWhite = 1
				ms.white = false
				ms.s--
			}
			nd.Broadcast(append(nd.PayloadBuf(1), wasWhite))
		}
		ms.selfNom = false
	case segJoin:
		for _, msg := range in {
			if len(msg.Payload) != 1 {
				panic("mcds: bad join payload")
			}
			if msg.Payload[0] == 1 {
				ms.s--
			}
		}
		covered := ms.white && len(in) > 0
		if covered {
			ms.white = false
			ms.s--
		}
		if round+1 == ms.sh.peelRounds {
			// θ reached 1: every node is covered; the same send slot seeds
			// the orientation flood (no coverage report is needed anymore).
			ms.bfsStart(nd)
			return
		}
		if covered {
			// Report the coverage at the next phase's report segment.
			nd.Broadcast(nil)
		}
	}
}
