package mcds

import (
	"congestds/internal/congest"
	"congestds/internal/graph"
)

// BlockingProgram is the three-phase MCDS algorithm written independently
// in the blocking Program style: a loop over the threshold schedule with
// four Syncs per phase (tracking per-neighbour whiteness in a boolean
// slice and recounting the support, where the stepped form keeps a
// counter), then an explicit flood-min loop and two connect Syncs. A
// bookkeeping bug in either form shows up as a byte-level divergence in
// the conformance suite rather than being replicated into both.
func BlockingProgram(g *graph.Graph, eps float64, diam int, inD, inCDS []bool) congest.Program {
	ths := Thresholds(g.MaxDegree(), eps)
	return func(nd *congest.Node) {
		joined := peelBlocking(nd, ths, inD, inCDS)
		connectBlocking(nd, joined, diam, inCDS)
	}
}

// ConnectBlocking is the blocking twin of ConnectStepFactory: orientation
// and connection over a given dominating set.
func ConnectBlocking(g *graph.Graph, inD []bool, diam int, inCDS []bool) congest.Program {
	return func(nd *congest.Node) {
		joined := inD[nd.V()]
		if joined {
			inCDS[nd.V()] = true
		}
		connectBlocking(nd, joined, diam, inCDS)
	}
}

// peelBlocking runs the nominated threshold-sweep greedy (4 Syncs per
// threshold) and reports whether this node joined the dominating set. It
// returns after the final join inbox without a further Sync, so the
// caller's next sends share the final phase's send slot — exactly where
// the stepped form seeds the orientation flood.
func peelBlocking(nd *congest.Node, ths []int, inD, inCDS []bool) bool {
	deg := nd.Degree()
	nbrWhite := make([]bool, deg)
	for p := range nbrWhite {
		nbrWhite[p] = true
	}
	white := true
	pendingCovered := false
	joined := false
	for i, th := range ths {
		// Report segment: announce a coverage picked up last phase.
		if pendingCovered {
			nd.Broadcast(nil)
			pendingCovered = false
		}
		for _, msg := range nd.Sync() {
			nbrWhite[msg.Port] = false
		}
		// Offer segment: recount support, broadcast it if candidate.
		s := 0
		for _, w := range nbrWhite {
			if w {
				s++
			}
		}
		if white {
			s++
		}
		candidate := s >= th
		if candidate {
			nd.Broadcast(congest.AppendUvarint(nil, uint64(s)))
		}
		offers := nd.Sync()
		// Nominate segment: whites pick the best candidate in N⁺.
		selfNom := false
		if white {
			bestS, bestID, bestPort := int64(-1), int64(-1), -1
			if candidate {
				bestS, bestID = int64(s), nd.ID()
			}
			for _, msg := range offers {
				cs, off := congest.Uvarint(msg.Payload, 0)
				if off < 0 {
					panic("mcds: bad candidacy payload")
				}
				if id := nd.NeighborID(msg.Port); int64(cs) > bestS || (int64(cs) == bestS && id > bestID) {
					bestS, bestID, bestPort = int64(cs), id, msg.Port
				}
			}
			if bestPort >= 0 {
				nd.Send(bestPort, nil)
			} else if bestS >= 0 {
				selfNom = true
			}
		}
		nominations := nd.Sync()
		// Join segment: nominated candidates enter the set.
		if candidate && (selfNom || len(nominations) > 0) {
			joined = true
			inD[nd.V()] = true
			inCDS[nd.V()] = true
			if white {
				white = false
				nd.Broadcast([]byte{1})
			} else {
				nd.Broadcast([]byte{0})
			}
		}
		joins := nd.Sync()
		for _, msg := range joins {
			if len(msg.Payload) != 1 {
				panic("mcds: bad join payload")
			}
			if msg.Payload[0] == 1 {
				nbrWhite[msg.Port] = false
			}
		}
		if white && len(joins) > 0 {
			white = false
			if i+1 < len(ths) {
				pendingCovered = true
			}
		}
	}
	return joined
}

// connectBlocking runs the orientation flood (diam Syncs) and the
// two-hop connect (2 Syncs).
func connectBlocking(nd *congest.Node, joined bool, diam int, inCDS []bool) {
	best := nd.ID()
	depth := 0
	parentPort := -1
	announce := func() {
		buf := congest.AppendVarint(nil, best)
		nd.Broadcast(congest.AppendUvarint(buf, uint64(depth)))
	}
	announce() // every node roots itself; the smallest ID wins the flood
	for r := 0; r < diam; r++ {
		improved := false
		for _, msg := range nd.Sync() {
			id, off := congest.Varint(msg.Payload, 0)
			if off < 0 {
				panic("mcds: bad orientation payload")
			}
			d, off := congest.Uvarint(msg.Payload, off)
			if off < 0 {
				panic("mcds: bad orientation payload")
			}
			if id < best || (id == best && int(d)+1 < depth) {
				best, depth, parentPort = id, int(d)+1, msg.Port
				improved = true
			}
		}
		if r == diam-1 {
			if joined && parentPort >= 0 {
				nd.Send(parentPort, nil)
			}
		} else if improved {
			announce()
		}
	}
	if in := nd.Sync(); len(in) > 0 {
		requireEmpty(in)
		inCDS[nd.V()] = true
		if parentPort >= 0 {
			nd.Send(parentPort, nil)
		}
	}
	if in := nd.Sync(); len(in) > 0 {
		requireEmpty(in)
		inCDS[nd.V()] = true
	}
}

// requireEmpty mirrors the stepped form's connect-segment assertion: the
// message-kind invariant (only empty tokens after the flood deadline),
// pinned against future edits. Too-small-DiamBound detection lives in the
// post-run verification, not here — see requireTokens in step.go.
func requireEmpty(in []congest.Incoming) {
	for _, msg := range in {
		if len(msg.Payload) != 0 {
			panic("mcds: orientation message after the flood deadline (DiamBound too small)")
		}
	}
}
