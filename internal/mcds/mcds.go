// Package mcds implements a connected-dominating-set solver following the
// two-phase structure of Ghaffari, "Near-Optimal Distributed Approximation
// of Minimum-Weight Connected Dominating Set" (arXiv:1404.7559, ICALP
// 2014): first construct a dominating set, then connect the dominators via
// shortest dominator-to-dominator paths, charging the connectors against
// the LP lower bound. It is the third algorithm family in the repository
// (after the source paper's pipeline in internal/mds+cds and the
// bounded-arboricity peeling in internal/arbmds), and like arbmds it is
// written natively as a congest.StepProgram with an independently written
// blocking twin for differential testing, so million-node instances run on
// congest.EngineStepped in bounded memory.
//
// # Restrictions and assumptions
//
// Ghaffari's paper solves the minimum-WEIGHT CDS problem. This
// implementation is the unit-weight restriction: internal/graph carries no
// edge or node weights, so |CDS| stands in for the weight and the LP lower
// bound specializes to verify.DualPackingLB (a feasible dual packing for
// the unweighted domination LP; OPT_CDS ≥ OPT_DS ≥ LB). Extending
// internal/graph with weights would generalize phase 1 to a weighted
// greedy and the charge to a weighted dual — the protocol skeleton below
// would not change.
//
// Nodes know n and Δ (the repository-wide standard assumption) and an
// upper bound D̂ on the network diameter (Params.DiamBound; the known-D
// assumption common in CONGEST literature — D̂ = n always works and is the
// default, callers with topology knowledge pass a tighter bound to cut the
// orientation phase short).
//
// # Algorithm
//
// Phase 1 — dominate (4·|schedule| rounds, a pure function of (Δ, ε)):
// the nominated threshold-sweep greedy. Thresholds sweep
// Δ̃, Δ̃/(1+ε), …, 1; a node's support s(v) counts the white (not yet
// dominated) nodes in its closed neighbourhood; each threshold phase runs
// the report/offer/nominate/join segments exactly as the bounded-arboricity
// peeling does (the schedule and the 4-segment protocol are shared with
// internal/arbmds — on general graphs the same protocol is the classic
// distributed greedy whose size tracks the (1+ε)(1+ln Δ̃)·OPT regime the
// E-mcds experiments check empirically against the dual-packing LB).
//
// Phase 2 — orient (D̂ rounds): a flood-min BFS. Every node floods the
// smallest identifier it has seen together with its distance from that
// node; when the flood stabilizes every node knows its parent toward the
// BFS tree rooted at the minimum-ID node of its component. Messages carry
// one ID and one distance, within the CONGEST budget.
//
// Phase 3 — connect (2 rounds): every dominator at BFS depth ≥ 1 sends a
// connect token to its parent; a node receiving a token joins the CDS and
// forwards the token one more hop toward the root. This realizes, for each
// dominator v, the shortest dominator-to-dominator path of length ≤ 3 from
// v to a dominator strictly closer to the root: v's grandparent g is
// dominated by some u ∈ N⁺(g) with depth(u) < depth(v), and v–parent–g–u
// lies inside the CDS. Induction over depths makes the CDS connected
// (per component), and each dominator adds at most 2 connectors, so
// |CDS| ≤ 3·|DS| + 1 — the same shape as the source paper's Section 4
// bound, with the connector paths charged against the LP lower bound in
// the E-mcds tables (ratio ≤ verify.MCDSClaimBound).
//
// The full run takes exactly 4·|schedule| + D̂ + 2 rounds.
package mcds

import (
	"context"
	"fmt"
	"sort"
	"time"

	"congestds/internal/arbmds"
	"congestds/internal/congest"
	"congestds/internal/graph"
	"congestds/internal/verify"
)

// Params configures Solve and Connect.
type Params struct {
	// Eps is the threshold decay of the dominating phase, exactly as in
	// arbmds.Params: zero means 0.5, values below arbmds.MinEps are clamped.
	Eps float64
	// DiamBound is D̂, the known upper bound on the graph diameter that
	// sizes the orientation phase. Zero means n (always safe); callers with
	// topology knowledge (e.g. 2·ecc(v)+2 from a host-side BFS, see
	// graph.Eccentricity) pass a tighter bound.
	DiamBound int
	// Sim selects the congest execution engine (congest.EngineStepped for
	// large instances). Zero means the goroutine reference engine.
	Sim congest.Engine
	// MaxRounds clamps the simulated run (zero: the simulator default).
	// Exposed for failure-injection tests.
	MaxRounds int
	// Deadline, when positive, bounds the run's wall clock; overruns
	// surface as congest.ErrDeadline with honest metrics.
	Deadline time.Duration
	// Ctx, when non-nil, cancels the run at round boundaries.
	Ctx context.Context
	// Observer, when non-nil, receives per-round telemetry from the runs
	// (see congest.Observer); attaching one never changes the outcome.
	Observer congest.Observer
}

// withDefaults normalizes the zero values against the target graph.
func (p Params) withDefaults(g *graph.Graph) Params {
	if p.Eps <= 0 {
		p.Eps = 0.5
	}
	if p.DiamBound <= 0 {
		p.DiamBound = g.N()
		if p.DiamBound < 1 {
			p.DiamBound = 1
		}
	}
	return p
}

// Result is the outcome of a run.
type Result struct {
	// CDS is the connected dominating set, ascending.
	CDS []int
	// DS is the phase-1 dominating set behind it, ascending.
	DS []int
	// InCDS and InD are the indicator vectors behind CDS and DS.
	InCDS, InD []bool
	// Thresholds is the phase-1 schedule (4 rounds per threshold).
	Thresholds []int
	// DiamBound is the D̂ the orientation phase actually used.
	DiamBound int
	// Metrics is the simulator's cost account. For Solve,
	// Metrics.Rounds = 4·len(Thresholds) + DiamBound + 2 exactly.
	Metrics congest.Metrics
}

// Thresholds returns the dominating phase's threshold schedule — the same
// schedule the bounded-arboricity peeling uses, a pure function of (Δ, ε).
func Thresholds(delta int, eps float64) []int {
	return arbmds.Thresholds(delta, eps)
}

// Solve computes a connected dominating set of the connected graph g under
// the selected engine. The program runs natively as a StepProgram on
// congest.EngineStepped and via the blocking adapter elsewhere, with
// byte-identical results. The returned set is verified connected and
// dominating before Solve returns (a linear-time check; callers wanting
// the ratio certificate run verify.CertifyCDS on top).
func Solve(g *graph.Graph, p Params) (*Result, error) {
	if g.N() == 0 {
		return &Result{}, nil
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("mcds: graph is not connected")
	}
	p = p.withDefaults(g)
	net := congest.NewNetwork(g, congest.Config{
		Engine: p.Sim, MaxRounds: p.MaxRounds,
		Deadline: p.Deadline, Ctx: p.Ctx, Observer: p.Observer,
	})
	inD := make([]bool, g.N())
	inCDS := make([]bool, g.N())
	m, err := net.RunStepped(StepFactory(g, p.Eps, p.DiamBound, inD, inCDS))
	if err != nil {
		return nil, err
	}
	res := assemble(g, inD, inCDS, p, m)
	if err := verify.CheckCDS(g, res.CDS); err != nil {
		return nil, fmt.Errorf("mcds: internal: %w (DiamBound %d below the true diameter?)", err, p.DiamBound)
	}
	return res, nil
}

// Connect turns an existing dominating set into a connected dominating set
// by running the orientation and connection phases alone — the CDS
// connector search in native StepProgram form (the blocking host-level
// construction lives in internal/cds; cds.ExtendStepped wraps this).
func Connect(g *graph.Graph, ds []int, p Params) (*Result, error) {
	if g.N() == 0 {
		return &Result{}, nil
	}
	if v := verify.FirstUndominated(g, ds); v != -1 {
		return nil, fmt.Errorf("mcds: input set does not dominate node %d", v)
	}
	p = p.withDefaults(g)
	inD := make([]bool, g.N())
	for _, v := range ds {
		inD[v] = true
	}
	inCDS := make([]bool, g.N())
	net := congest.NewNetwork(g, congest.Config{
		Engine: p.Sim, MaxRounds: p.MaxRounds,
		Deadline: p.Deadline, Ctx: p.Ctx, Observer: p.Observer,
	})
	m, err := net.RunStepped(ConnectStepFactory(g, inD, p.DiamBound, inCDS))
	if err != nil {
		return nil, err
	}
	res := assemble(g, inD, inCDS, p, m)
	// Componentwise check: Connect accepts disconnected graphs (one CDS
	// per component), and this is the guard that catches a DiamBound below
	// the true diameter there — the in-protocol assertions cannot, because
	// a quiesced-too-early flood sends nothing extra.
	if err := verify.CheckCDSComponents(g, res.CDS); err != nil {
		return nil, fmt.Errorf("mcds: internal: %w (DiamBound %d below the true diameter?)", err, p.DiamBound)
	}
	return res, nil
}

// assemble builds the Result from the output indicator vectors.
func assemble(g *graph.Graph, inD, inCDS []bool, p Params, m congest.Metrics) *Result {
	res := &Result{
		InCDS:      inCDS,
		InD:        inD,
		Thresholds: Thresholds(g.MaxDegree(), p.Eps),
		DiamBound:  p.DiamBound,
		Metrics:    m,
	}
	for v := range inCDS {
		if inCDS[v] {
			res.CDS = append(res.CDS, v)
		}
		if inD[v] {
			res.DS = append(res.DS, v)
		}
	}
	sort.Ints(res.CDS)
	sort.Ints(res.DS)
	return res
}
