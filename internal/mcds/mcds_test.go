package mcds

import (
	"testing"

	"congestds/internal/baseline"
	"congestds/internal/congest"
	"congestds/internal/graph"
	"congestds/internal/verify"
)

func TestSolveEmptyAndSingle(t *testing.T) {
	res, err := Solve(graph.Path(0), Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CDS) != 0 {
		t.Errorf("empty graph CDS = %v, want empty", res.CDS)
	}
	res, err = Solve(graph.Path(1), Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CDS) != 1 {
		t.Errorf("single-node CDS size %d, want 1", len(res.CDS))
	}
}

func TestSolveRejectsDisconnected(t *testing.T) {
	g, err := graph.FromEdges(4, [][2]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(g, Params{}); err == nil {
		t.Error("disconnected graph accepted")
	}
}

func testFamilies() []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"path20", graph.Path(20)},
		{"cycle16", graph.Cycle(16)},
		{"star14", graph.Star(14)},
		{"grid5x5", graph.Grid(5, 5)},
		{"gnp50", graph.GNPConnected(50, 0.1, 3)},
		{"caterpillar6x3", graph.Caterpillar(6, 3)},
		{"tree2x4", graph.CompleteTree(2, 4)},
		{"disk60", graph.UnitDiskConnected(60, 0.25, 4)},
		{"complete8", graph.Complete(8)},
		{"ba50", graph.BarabasiAlbert(50, 2, 7)},
	}
}

func TestSolveAcrossFamilies(t *testing.T) {
	for _, tt := range testFamilies() {
		t.Run(tt.name, func(t *testing.T) {
			res, err := Solve(tt.g, Params{})
			if err != nil {
				t.Fatal(err)
			}
			if err := verify.CheckCDS(tt.g, res.CDS); err != nil {
				t.Fatalf("invalid CDS: %v", err)
			}
			if v := verify.FirstUndominated(tt.g, res.DS); v != -1 {
				t.Errorf("phase-1 set leaves node %d undominated", v)
			}
			if len(res.CDS) > 3*len(res.DS)+1 {
				t.Errorf("|CDS|=%d exceeds 3|DS|+1=%d", len(res.CDS), 3*len(res.DS)+1)
			}
			// Exact round accounting: the whole schedule is a pure function
			// of (Δ, ε, D̂).
			want := 4*len(res.Thresholds) + res.DiamBound + 2
			if res.Metrics.Rounds != want {
				t.Errorf("rounds=%d, want 4·|schedule|+D̂+2=%d", res.Metrics.Rounds, want)
			}
		})
	}
}

func TestSolveWithTightDiamBound(t *testing.T) {
	for _, tt := range testFamilies() {
		t.Run(tt.name, func(t *testing.T) {
			diam := 2*tt.g.Eccentricity(0) + 2
			res, err := Solve(tt.g, Params{DiamBound: diam})
			if err != nil {
				t.Fatal(err)
			}
			if err := verify.CheckCDS(tt.g, res.CDS); err != nil {
				t.Fatalf("invalid CDS with D̂=%d: %v", diam, err)
			}
			if bound := verify.RoundBoundMCDS(tt.g.MaxDegree(), 0.5, diam); res.Metrics.Rounds > bound {
				t.Errorf("rounds=%d exceed claimed bound %d", res.Metrics.Rounds, bound)
			}
			// The loose-D̂ run must pick the identical set: D̂ affects the
			// orientation length, never the flood's fixpoint.
			loose, err := Solve(tt.g, Params{})
			if err != nil {
				t.Fatal(err)
			}
			if len(loose.CDS) != len(res.CDS) {
				t.Fatalf("CDS depends on DiamBound: %d vs %d members", len(res.CDS), len(loose.CDS))
			}
			for i := range res.CDS {
				if res.CDS[i] != loose.CDS[i] {
					t.Fatalf("CDS depends on DiamBound at member %d", i)
				}
			}
		})
	}
}

func TestSolveEngineInvariance(t *testing.T) {
	g := graph.GNPConnected(60, 0.08, 11)
	var ref *Result
	for _, eng := range congest.Engines() {
		res, err := Solve(g, Params{Sim: eng})
		if err != nil {
			t.Fatalf("engine %v: %v", eng, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if len(res.CDS) != len(ref.CDS) || res.Metrics.Rounds != ref.Metrics.Rounds {
			t.Fatalf("engine %v diverges: %d members/%d rounds vs %d/%d",
				eng, len(res.CDS), res.Metrics.Rounds, len(ref.CDS), ref.Metrics.Rounds)
		}
		for i := range res.CDS {
			if res.CDS[i] != ref.CDS[i] {
				t.Fatalf("engine %v: CDS member %d differs", eng, i)
			}
		}
	}
}

func TestConnectExtendsGreedy(t *testing.T) {
	for _, tt := range testFamilies() {
		t.Run(tt.name, func(t *testing.T) {
			ds := baseline.Greedy(tt.g)
			res, err := Connect(tt.g, ds, Params{})
			if err != nil {
				t.Fatal(err)
			}
			if err := verify.CheckCDS(tt.g, res.CDS); err != nil {
				t.Fatalf("invalid CDS: %v", err)
			}
			inCDS := make(map[int]bool, len(res.CDS))
			for _, v := range res.CDS {
				inCDS[v] = true
			}
			for _, v := range ds {
				if !inCDS[v] {
					t.Errorf("DS member %d missing from CDS", v)
				}
			}
			if len(res.CDS) > 3*len(ds)+1 {
				t.Errorf("|CDS|=%d exceeds 3|DS|+1=%d", len(res.CDS), 3*len(ds)+1)
			}
		})
	}
}

func TestConnectRejectsNonDominating(t *testing.T) {
	if _, err := Connect(graph.Path(6), []int{0}, Params{}); err == nil {
		t.Error("non-dominating input accepted")
	}
}

func TestSolveDeterministic(t *testing.T) {
	g := graph.GNPConnected(48, 0.1, 5)
	a, err := Solve(g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(g, Params{Sim: congest.EngineStepped})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.CDS) != len(b.CDS) {
		t.Fatal("non-deterministic CDS size")
	}
	for i := range a.CDS {
		if a.CDS[i] != b.CDS[i] {
			t.Fatal("non-deterministic CDS")
		}
	}
}

// A DiamBound below the true diameter must fail loudly (the post-run
// verification rejects the mis-oriented output), never return a silently
// wrong set.
func TestSolveDiamBoundTooSmallFailsLoudly(t *testing.T) {
	g := graph.Path(30)
	res, err := Solve(g, Params{DiamBound: 3})
	if err == nil {
		t.Fatalf("DiamBound=3 on a diameter-29 path returned a result with %d members", len(res.CDS))
	}
}

// The same guard must hold on Connect with a disconnected input, where
// whole-graph connectivity is undefined and the componentwise check is
// the only line of defence.
func TestConnectDiamBoundTooSmallFailsOnDisconnected(t *testing.T) {
	var edges [][2]int
	for v := 0; v+1 < 30; v++ {
		edges = append(edges, [2]int{v, v + 1}) // component A: path 0..29
	}
	for v := 30; v+1 < 60; v++ {
		edges = append(edges, [2]int{v, v + 1}) // component B: path 30..59
	}
	g, err := graph.FromEdges(60, edges)
	if err != nil {
		t.Fatal(err)
	}
	ds := baseline.Greedy(g)
	// Sanity: a safe bound succeeds.
	if _, err := Connect(g, ds, Params{}); err != nil {
		t.Fatalf("default DiamBound: %v", err)
	}
	if res, err := Connect(g, ds, Params{DiamBound: 3}); err == nil {
		t.Fatalf("DiamBound=3 on diameter-29 components returned a result with %d members", len(res.CDS))
	}
}

// The certificate: the claim bound holds on every test family.
func TestSolveWithinClaimBound(t *testing.T) {
	for _, tt := range testFamilies() {
		t.Run(tt.name, func(t *testing.T) {
			res, err := Solve(tt.g, Params{})
			if err != nil {
				t.Fatal(err)
			}
			cert := verify.CertifyCDS(tt.g, res.CDS, verify.MCDSClaimBound(tt.g.MaxDegree(), 0.5))
			if !cert.OK {
				t.Errorf("certificate failed: %v", cert)
			}
		})
	}
}
