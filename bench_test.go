// Benchmark harness: one entry per experiment (E1..E12, see DESIGN.md and
// EXPERIMENTS.md). The paper is a theory paper without tables or figures;
// each benchmark regenerates the measurements that validate one of its
// claims and reports headline numbers as custom metrics. Violations of a
// claim fail the benchmark.
package main

import (
	"strconv"
	"testing"

	"congestds/internal/experiments"
	"congestds/internal/graph"
	"congestds/internal/mds"
)

func runExperiment(b *testing.B, fn func(quick bool) *experiments.Table) {
	b.ReportAllocs()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = fn(true)
	}
	if t.Violations > 0 {
		b.Fatalf("experiment %s: %d claim violations:\n%s", t.ID, t.Violations, t)
	}
	b.ReportMetric(float64(len(t.Rows)), "rows")
}

func BenchmarkE1_TheoremOneOne(b *testing.B)       { runExperiment(b, experiments.E1) }
func BenchmarkE2_TheoremOneTwo(b *testing.B)       { runExperiment(b, experiments.E2) }
func BenchmarkE3_InitialFractional(b *testing.B)   { runExperiment(b, experiments.E3) }
func BenchmarkE4_FactorTwo(b *testing.B)           { runExperiment(b, experiments.E4) }
func BenchmarkE5_OneShot(b *testing.B)             { runExperiment(b, experiments.E5) }
func BenchmarkE6_CDS(b *testing.B)                 { runExperiment(b, experiments.E6) }
func BenchmarkE7_Scaling(b *testing.B)             { runExperiment(b, experiments.E7) }
func BenchmarkE8_DerandVsRandom(b *testing.B)      { runExperiment(b, experiments.E8) }
func BenchmarkE9_UncoveredProb(b *testing.B)       { runExperiment(b, experiments.E9) }
func BenchmarkE10_KWise(b *testing.B)              { runExperiment(b, experiments.E10) }
func BenchmarkE11_SetCover(b *testing.B)           { runExperiment(b, experiments.E11) }
func BenchmarkE12_Ablation(b *testing.B)           { runExperiment(b, experiments.E12) }
func BenchmarkEArb_BoundedArboricity(b *testing.B) { runExperiment(b, experiments.EArb) }
func BenchmarkEMcds_ConnectedDS(b *testing.B)      { runExperiment(b, experiments.EMcds) }

// BenchmarkEArbScale100k is the wall-clock companion to the E-arb scale
// row at a bench-friendly size (the 10⁶-node version lives behind
// cmd/mdsbench -earb-scale and the memsmoke CI job).
func BenchmarkEArbScale100k(b *testing.B) {
	b.ReportAllocs()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.EArbScale(100_000)
	}
	if t.Violations > 0 {
		b.Fatalf("%d claim violations:\n%s", t.Violations, t)
	}
}

// BenchmarkEMcdsScale100k is the wall-clock companion to the E-mcds scale
// row at a bench-friendly size (the 10⁶-node version lives behind
// cmd/mdsbench -emcds-scale and the memsmoke CI job).
func BenchmarkEMcdsScale100k(b *testing.B) {
	b.ReportAllocs()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.EMcdsScale(100_000)
	}
	if t.Violations > 0 {
		b.Fatalf("%d claim violations:\n%s", t.Violations, t)
	}
}

// BenchmarkSolveScaling times the Theorem 1.2 pipeline across sizes (the
// wall-clock companion to E7's round measurements).
func BenchmarkSolveScaling(b *testing.B) {
	for _, n := range []int{32, 64, 128, 256} {
		g := graph.GNPConnected(n, 4.0/float64(n), 5)
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			var rounds int
			for i := 0; i < b.N; i++ {
				res, err := mds.Solve(g, mds.Params{Eps: 0.5, Engine: mds.EngineColoring})
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Ledger.Metrics().TotalRounds()
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkEngines compares both derandomization engines head-to-head on
// the same graph (the ablation of DESIGN.md's per-experiment index).
func BenchmarkEngines(b *testing.B) {
	g := graph.GNPConnected(96, 0.05, 7)
	for _, eng := range []mds.Engine{mds.EngineDecomposition, mds.EngineColoring, mds.EngineColoringLocal} {
		b.Run(eng.String(), func(b *testing.B) {
			b.ReportAllocs()
			var size, rounds int
			for i := 0; i < b.N; i++ {
				res, err := mds.Solve(g, mds.Params{Eps: 0.5, Engine: eng})
				if err != nil {
					b.Fatal(err)
				}
				size = len(res.Set)
				rounds = res.Ledger.Metrics().TotalRounds()
			}
			b.ReportMetric(float64(size), "setsize")
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}
