// Routing backbone: a connected dominating set (Theorem 1.4) of a mesh
// serves as a virtual backbone — every node is adjacent to the backbone and
// the backbone is connected, so any two nodes can communicate through it.
//
//	go run ./examples/backbone [-sim stepped]
package main

import (
	"flag"
	"fmt"
	"log"

	"congestds/internal/cds"
	"congestds/internal/congest"
	"congestds/internal/graph"
	"congestds/internal/mds"
	"congestds/internal/verify"
)

func main() {
	sim := flag.String("sim", "goroutine", "congest execution engine: goroutine | sharded | stepped")
	flag.Parse()
	simEngine, err := congest.ParseEngine(*sim)
	if err != nil {
		log.Fatal(err)
	}

	for _, tt := range []struct {
		name string
		g    *graph.Graph
	}{
		{"torus 12x12", graph.Torus(12, 12)},
		{"grid 15x15", graph.Grid(15, 15)},
		{"unit disk n=250", graph.UnitDiskConnected(250, 0.12, 3)},
	} {
		res, err := cds.Solve(tt.g, cds.Params{MDS: mds.Params{Eps: 0.5, Sim: simEngine}})
		if err != nil {
			log.Fatal(err)
		}
		if err := verify.CheckCDS(tt.g, res.CDS); err != nil {
			log.Fatalf("%s: invalid backbone: %v", tt.name, err)
		}
		fmt.Printf("%-18s n=%-4d backbone=%-4d (dominating set %d + %d connectors, %d clusters)\n",
			tt.name, tt.g.N(), len(res.CDS), len(res.DS),
			len(res.CDS)-len(res.DS), len(res.RulingSet))
		fmt.Printf("%-18s guarantee ≤ %.2f·OPT, |CDS| ≤ 3·|DS| holds: %v, rounds=%d\n",
			"", res.Bound, len(res.CDS) <= 3*len(res.DS),
			res.Ledger.Metrics().TotalRounds())
	}
}
