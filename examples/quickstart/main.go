// Quickstart: compute a deterministic dominating set approximation on a
// random graph and verify the paper's guarantee.
//
//	go run ./examples/quickstart [-sim stepped]
package main

import (
	"flag"
	"fmt"
	"log"

	"congestds/internal/baseline"
	"congestds/internal/congest"
	"congestds/internal/graph"
	"congestds/internal/mds"
	"congestds/internal/verify"
)

func main() {
	sim := flag.String("sim", "goroutine", "congest execution engine: goroutine | sharded | stepped")
	flag.Parse()
	simEngine, err := congest.ParseEngine(*sim)
	if err != nil {
		log.Fatal(err)
	}

	// A sparse random connected graph: 200 nodes, expected degree ~4.
	g := graph.GNPConnected(200, 4.0/200, 42)
	fmt.Printf("graph: %v, diameter=%d\n", g, g.Diameter())

	// Theorem 1.2: deterministic CONGEST MDS via distance-2 colorings.
	res, err := mds.Solve(g, mds.Params{Eps: 0.5, Engine: mds.EngineColoring, Sim: simEngine})
	if err != nil {
		log.Fatal(err)
	}
	if !verify.IsDominatingSet(g, res.Set) {
		log.Fatal("not a dominating set (bug)")
	}

	cert := verify.Certify(g, res.Set)
	greedy := baseline.Greedy(g)
	m := res.Ledger.Metrics()

	fmt.Printf("dominating set size:     %d\n", len(res.Set))
	fmt.Printf("greedy baseline size:    %d\n", len(greedy))
	fmt.Printf("certified lower bound:   %.2f  (certified ratio ≤ %.3f)\n",
		cert.LowerBound, cert.Ratio)
	fmt.Printf("paper guarantee (bound): %.3f  ((1+ε)(1+ln(Δ+1)))\n", res.Bound)
	fmt.Printf("rounds: %d measured + %d charged; %d messages, max %d bits ≤ budget %d bits\n",
		m.Rounds, m.ChargedRounds, m.Messages, m.MaxMsgBits, m.BandwidthBits)
	fmt.Printf("factor-two phases: %d (fractionality trace below)\n", len(res.Phases))
	for i, ph := range res.Phases {
		fmt.Printf("  phase %d: 1/%d-fractional -> %.5f, size %.2f -> %.2f\n",
			i, ph.R, ph.FracOut, ph.SizeIn, ph.SizeOut)
	}
}
