// Distributed set cover (Section 5): the dominating set machinery applied
// to a synthetic service-placement instance — elements are city blocks,
// sets are candidate facility locations covering nearby blocks.
//
//	go run ./examples/setcover
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"congestds/internal/setcover"
)

func main() {
	r := rand.New(rand.NewPCG(11, 13))
	const blocks = 400
	in := &setcover.Instance{NumElements: blocks}
	// 120 candidate facilities, each covering a random cluster of blocks.
	for f := 0; f < 120; f++ {
		centre := r.IntN(blocks)
		size := 3 + r.IntN(15)
		seen := map[int]bool{}
		var set []int
		for len(set) < size {
			e := (centre + r.IntN(25) - 12 + blocks) % blocks
			if !seen[e] {
				seen[e] = true
				set = append(set, e)
			}
		}
		in.Sets = append(in.Sets, set)
	}
	// Guarantee coverability.
	covered := make([]bool, blocks)
	for _, s := range in.Sets {
		for _, e := range s {
			covered[e] = true
		}
	}
	for e, ok := range covered {
		if !ok {
			in.Sets = append(in.Sets, []int{e})
		}
	}

	res, err := setcover.Solve(in, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	greedy := setcover.Greedy(in)
	fmt.Printf("blocks=%d candidate facilities=%d max coverage=%d\n",
		blocks, len(in.Sets), in.MaxSetSize())
	fmt.Printf("deterministic cover: %d facilities (fractional size %.2f, rounding bound 1+ln(smax+1)=%.2f)\n",
		len(res.Cover), res.FractionalSize, res.Bound)
	fmt.Printf("greedy baseline:     %d facilities\n", len(greedy))
}
