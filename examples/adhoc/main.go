// Ad-hoc network clustering: the paper's motivating application. Sensor
// nodes scattered in the unit square form a unit-disk graph; a dominating
// set gives cluster heads so every sensor has a head in radio range. The
// example compares the deterministic algorithms of Theorems 1.1 and 1.2
// against the greedy baseline, and shows the message-passing protocols
// (leader election, BFS tree, aggregation) running on the same network.
//
//	go run ./examples/adhoc [-sim stepped]
package main

import (
	"flag"
	"fmt"
	"log"

	"congestds/internal/baseline"
	"congestds/internal/congest"
	"congestds/internal/graph"
	"congestds/internal/mds"
	"congestds/internal/protocols"
	"congestds/internal/verify"
)

func main() {
	sim := flag.String("sim", "goroutine", "congest execution engine: goroutine | sharded | stepped")
	flag.Parse()
	simEngine, err := congest.ParseEngine(*sim)
	if err != nil {
		log.Fatal(err)
	}
	cfg := congest.Config{Engine: simEngine}

	// 300 sensors, radio radius chosen to keep the network connected.
	g := graph.UnitDiskConnected(300, 0.11, 7)
	fmt.Printf("sensor network: %v\n", g)

	// First, the sensors discover their network with real message passing.
	net := congest.NewNetwork(g, cfg)
	var ledger congest.Ledger
	leader, err := protocols.ElectLeader(net, &ledger)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := protocols.BFSTree(congest.NewNetwork(g, cfg), &ledger, leader, g.N())
	if err != nil {
		log.Fatal(err)
	}
	links, err := protocols.ConvergecastSum(congest.NewNetwork(g, cfg), &ledger, tree,
		func(v int) int64 { return int64(g.Degree(v)) })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("leader elected: node %d (ID %d); network has %d radio links\n",
		leader, g.ID(leader), links/2)

	// Cluster-head election: deterministic MDS, both engines.
	for _, engine := range []mds.Engine{mds.EngineDecomposition, mds.EngineColoring} {
		res, err := mds.Solve(g, mds.Params{Eps: 0.5, Engine: engine, Sim: simEngine})
		if err != nil {
			log.Fatal(err)
		}
		if !verify.IsDominatingSet(g, res.Set) {
			log.Fatal("invalid cluster-head set")
		}
		cert := verify.Certify(g, res.Set)
		fmt.Printf("%-24s heads=%-4d certified-ratio≤%.3f guarantee=%.3f rounds=%d\n",
			engine, len(res.Set), cert.Ratio, res.Bound,
			res.Ledger.Metrics().TotalRounds())
	}
	greedy := baseline.Greedy(g)
	fmt.Printf("%-24s heads=%d (centralized reference)\n", "greedy", len(greedy))

	// Every sensor can reach a cluster head in one hop — by definition of a
	// dominating set. Report average cluster size for the coloring engine.
	res, _ := mds.Solve(g, mds.Params{Eps: 0.5, Sim: simEngine})
	fmt.Printf("average cluster size: %.1f sensors per head\n",
		float64(g.N())/float64(len(res.Set)))
}
