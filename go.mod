module congestds

go 1.24
